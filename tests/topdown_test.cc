// The memoized top-down (QSQ-style) engine: correctness against the
// stratified bottom-up reference on recursion, negation, grouping and sets.
#include <gtest/gtest.h>

#include <algorithm>

#include "base/str_util.h"
#include "ldl/ldl.h"
#include "parser/parser.h"
#include "workload/workload.h"

namespace ldl {
namespace {

std::vector<std::string> Render(Session& session, const std::vector<Tuple>& tuples) {
  std::vector<std::string> out;
  for (const Tuple& tuple : tuples) out.push_back(session.FormatTuple(tuple));
  std::sort(out.begin(), out.end());
  return out;
}

// Runs the goal through both engines and expects identical answers.
void ExpectAgreement(Session& session, const std::string& goal) {
  auto full = session.Query(goal);
  ASSERT_TRUE(full.ok()) << goal << ": " << full.status();
  QueryOptions topdown;
  topdown.strategy = ldl::QueryStrategy::kTopDown;
  auto td = session.Query(goal, topdown);
  ASSERT_TRUE(td.ok()) << goal << ": " << td.status();
  EXPECT_EQ(Render(session, full->tuples), Render(session, td->tuples)) << goal;
}

TEST(TopDown, LinearRecursionBoundAndFree) {
  Session session;
  ASSERT_TRUE(session.Load(ParentChain(40, "p")).ok());
  ASSERT_TRUE(session
                  .Load("a(X, Y) :- p(X, Y).\n"
                        "a(X, Y) :- p(X, Z), a(Z, Y).")
                  .ok());
  ExpectAgreement(session, "a(p5, X)");
  ExpectAgreement(session, "a(X, p39)");
  ExpectAgreement(session, "a(p0, p39)");
  ExpectAgreement(session, "a(p39, X)");  // empty
}

TEST(TopDown, NonLinearRecursion) {
  Session session;
  ASSERT_TRUE(session.Load(ParentChain(16, "e")).ok());
  ASSERT_TRUE(session
                  .Load("t(X, Y) :- e(X, Y).\n"
                        "t(X, Y) :- t(X, Z), t(Z, Y).")
                  .ok());
  ExpectAgreement(session, "t(p0, X)");
  ExpectAgreement(session, "t(X, Y)");
}

TEST(TopDown, BoundQueryTouchesLessThanFullEvaluation) {
  Session session;
  ASSERT_TRUE(session.Load(ParentChain(200, "p")).ok());
  ASSERT_TRUE(session
                  .Load("a(X, Y) :- p(X, Y).\n"
                        "a(X, Y) :- p(X, Z), a(Z, Y).")
                  .ok());
  QueryOptions topdown;
  topdown.strategy = ldl::QueryStrategy::kTopDown;
  auto result = session.Query("a(p190, X)", topdown);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->tuples.size(), 10u);
  // Only the suffix is tabled: far fewer than the 20k facts of the closure.
  EXPECT_LT(result->stats.facts_derived, 200u);
}

TEST(TopDown, StratifiedNegation) {
  Session session;
  ASSERT_TRUE(session
                  .Load("node(a). node(b). node(c). edge(a, b).\n"
                        "reach(a).\n"
                        "reach(Y) :- reach(X), edge(X, Y).\n"
                        "unreach(X) :- node(X), !reach(X).")
                  .ok());
  ExpectAgreement(session, "unreach(X)");
  ExpectAgreement(session, "unreach(c)");
  ExpectAgreement(session, "unreach(a)");  // empty
}

TEST(TopDown, ExistentialNegation) {
  Session session;
  ASSERT_TRUE(session
                  .Load("node(a). node(b). node(c).\n"
                        "edge(a, b). edge(b, c).\n"
                        "leaf(X) :- node(X), !edge(X, Z).")
                  .ok());
  ExpectAgreement(session, "leaf(X)");
}

TEST(TopDown, GroupingPerCall) {
  Session session;
  ASSERT_TRUE(session
                  .Load("e(1, a). e(1, b). e(2, c).\n"
                        "g(K, <V>) :- e(K, V).")
                  .ok());
  ExpectAgreement(session, "g(1, S)");
  ExpectAgreement(session, "g(K, S)");
  // Bound grouped argument: footnote 6 -- the binding must not restrict
  // the body; it filters the produced group.
  ExpectAgreement(session, "g(1, {a, b})");
  ExpectAgreement(session, "g(1, {a})");  // empty: the group is {a, b}
}

TEST(TopDown, YoungRunningExample) {
  SameGenerationWorkload workload = MakeSameGeneration(3, 2, 3);
  Session session;
  ASSERT_TRUE(session.Load(workload.facts).ok());
  ASSERT_TRUE(session
                  .Load("a(X, Y) :- p(X, Y).\n"
                        "a(X, Y) :- a(X, Z), a(Z, Y).\n"
                        "sg(X, Y) :- siblings(X, Y).\n"
                        "sg(X, Y) :- p(Z1, X), sg(Z1, Z2), p(Z2, Y).\n"
                        "young(X, <Y>) :- !a(X, Z), sg(X, Y).")
                  .ok());
  ExpectAgreement(session, StrCat("young(", workload.a_leaf, ", S)"));
  ExpectAgreement(session, StrCat("young(", workload.an_inner, ", S)"));
  ExpectAgreement(session, StrCat("sg(", workload.a_leaf, ", X)"));
}

TEST(TopDown, SetsAndBuiltins) {
  Session session;
  ASSERT_TRUE(session
                  .Load("s({1, 2}). s({3}).\n"
                        "u(U) :- s(A), s(B), union(A, B, U).\n"
                        "elem(X) :- s(S), member(X, S).")
                  .ok());
  ExpectAgreement(session, "u(U)");
  ExpectAgreement(session, "elem(X)");
  ExpectAgreement(session, "u({1, 2, 3})");
}

TEST(TopDown, BomCostQuery) {
  BomWorkload workload = MakeBom(14, 5);
  Session session;
  ASSERT_TRUE(session.Load(workload.facts).ok());
  ASSERT_TRUE(session
                  .Load("p(P, S) :- part_of(P, S).\n"
                        "q(X, C) :- cost(X, C).\n"
                        "part(P, <S>) :- p(P, S).\n"
                        "tc({X}, C) :- q(X, C).\n"
                        "tc({X}, C) :- part(X, S), tc(S, C).\n"
                        "tc(S, C) :- partition(S, S1, S2), tc(S1, C1), "
                        "tc(S2, C2), +(C1, C2, C).\n"
                        "result(X, C) :- tc({X}, C).")
                  .ok());
  // Compare against magic (full evaluation is exponential in parts).
  QueryOptions magic;
  magic.strategy = ldl::QueryStrategy::kMagic;
  QueryOptions topdown;
  topdown.strategy = ldl::QueryStrategy::kTopDown;
  std::string goal = StrCat("result(", workload.root, ", C)");
  auto a = session.Query(goal, magic);
  auto b = session.Query(goal, topdown);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(Render(session, a->tuples), Render(session, b->tuples));
}

TEST(TopDown, EdbGoalsPassThrough) {
  Session session;
  ASSERT_TRUE(session.Load("p(a, b). p(a, c).").ok());
  QueryOptions topdown;
  topdown.strategy = ldl::QueryStrategy::kTopDown;
  auto result = session.Query("p(a, X)", topdown);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->tuples.size(), 2u);
}

TEST(TopDown, RecursionDepthGuard) {
  Session session;
  ASSERT_TRUE(session.Load(ParentChain(64, "p")).ok());
  ASSERT_TRUE(session
                  .Load("a(X, Y) :- p(X, Y).\n"
                        "a(X, Y) :- p(X, Z), a(Z, Y).")
                  .ok());
  ASSERT_TRUE(session.Analyze().ok());
  // Engine-level options with a tiny depth cap.
  Database edb(&session.catalog());
  // Reuse Session's EDB by evaluating (cheap) and copying base facts.
  ASSERT_TRUE(session.Evaluate().ok());
  PredId p = session.catalog().Find("p", 2);
  session.database().relation(p).ForEachRow(
      0, session.database().relation(p).row_count(),
      [&](size_t, RowRef t) { edb.AddFact(p, t); });
  TopDownOptions options;
  options.max_call_depth = 4;
  TopDownEngine engine(&session.factory(), &session.catalog(), &session.program(),
                       &session.stratification(), &edb, options);
  auto goal_ast = ParseLiteralText("a(p0, X)", &session.interner());
  ASSERT_TRUE(goal_ast.ok());
  auto goal = LowerLiteral(session.factory(), session.catalog(), *goal_ast);
  ASSERT_TRUE(goal.ok());
  auto result = engine.Query(*goal);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace ldl
