#include <gtest/gtest.h>

#include "term/term.h"

namespace ldl {
namespace {

class TermTest : public ::testing::Test {
 protected:
  Interner interner_;
  TermFactory factory_{&interner_};
};

// ----------------------------------------------------------- Hash-consing --

TEST_F(TermTest, ConstantsAreInterned) {
  EXPECT_EQ(factory_.MakeInt(7), factory_.MakeInt(7));
  EXPECT_NE(factory_.MakeInt(7), factory_.MakeInt(8));
  EXPECT_EQ(factory_.MakeAtom("john"), factory_.MakeAtom("john"));
  EXPECT_NE(factory_.MakeAtom("john"), factory_.MakeAtom("jane"));
  EXPECT_EQ(factory_.MakeString("x"), factory_.MakeString("x"));
  // An atom and a string with the same text are distinct terms.
  EXPECT_NE(static_cast<const void*>(factory_.MakeAtom("x")),
            static_cast<const void*>(factory_.MakeString("x")));
}

TEST_F(TermTest, FunctionTermsAreInterned) {
  const Term* a = factory_.MakeAtom("a");
  const Term* b = factory_.MakeAtom("b");
  const Term* args1[] = {a, b};
  const Term* args2[] = {a, b};
  EXPECT_EQ(factory_.MakeFunc("f", args1), factory_.MakeFunc("f", args2));
  const Term* args3[] = {b, a};
  EXPECT_NE(factory_.MakeFunc("f", args1), factory_.MakeFunc("f", args3));
  EXPECT_NE(factory_.MakeFunc("f", args1), factory_.MakeFunc("g", args1));
}

TEST_F(TermTest, InternedCountGrowsOnlyOnNewStructure) {
  size_t before = factory_.interned_count();
  factory_.MakeInt(1);
  factory_.MakeInt(1);
  factory_.MakeInt(1);
  EXPECT_EQ(factory_.interned_count(), before + 1);
}

// ------------------------------------------------------- Canonical sets --

TEST_F(TermTest, SetsAreSortedAndDeduplicated) {
  const Term* one = factory_.MakeInt(1);
  const Term* two = factory_.MakeInt(2);
  const Term* elems1[] = {two, one, two};
  const Term* elems2[] = {one, two};
  const Term* s1 = factory_.MakeSet(elems1);
  const Term* s2 = factory_.MakeSet(elems2);
  EXPECT_EQ(s1, s2);  // set equality is pointer equality
  EXPECT_EQ(s1->size(), 2u);
  EXPECT_EQ(s1->arg(0), one);  // sorted: 1 < 2
  EXPECT_EQ(s1->arg(1), two);
}

TEST_F(TermTest, EmptySetIsUnique) {
  EXPECT_EQ(factory_.MakeSet({}), factory_.EmptySet());
  EXPECT_EQ(factory_.EmptySet()->size(), 0u);
  EXPECT_TRUE(factory_.EmptySet()->is_set());
}

TEST_F(TermTest, NestedSets) {
  const Term* one = factory_.MakeInt(1);
  const Term* inner_elems[] = {one};
  const Term* inner = factory_.MakeSet(inner_elems);
  const Term* outer_elems[] = {inner, factory_.EmptySet()};
  const Term* outer = factory_.MakeSet(outer_elems);
  EXPECT_EQ(outer->size(), 2u);
  // {} sorts before {1} (smaller cardinality).
  EXPECT_EQ(outer->arg(0), factory_.EmptySet());
  EXPECT_EQ(outer->arg(1), inner);
}

TEST_F(TermTest, SetInsertIsSconsSemantics) {
  const Term* one = factory_.MakeInt(1);
  const Term* two = factory_.MakeInt(2);
  const Term* s = factory_.SetInsert(one, factory_.EmptySet());
  EXPECT_EQ(s->size(), 1u);
  const Term* s2 = factory_.SetInsert(two, s);
  EXPECT_EQ(s2->size(), 2u);
  // Inserting an existing element is the identity (duplicate elimination).
  EXPECT_EQ(factory_.SetInsert(one, s2), s2);
}

TEST_F(TermTest, SetAlgebra) {
  auto set_of = [&](std::initializer_list<int> xs) {
    std::vector<const Term*> elems;
    for (int x : xs) elems.push_back(factory_.MakeInt(x));
    return factory_.MakeSet(elems);
  };
  const Term* a = set_of({1, 2, 3});
  const Term* b = set_of({2, 3, 4});
  EXPECT_EQ(factory_.SetUnion(a, b), set_of({1, 2, 3, 4}));
  EXPECT_EQ(factory_.SetIntersect(a, b), set_of({2, 3}));
  EXPECT_EQ(factory_.SetDifference(a, b), set_of({1}));
  EXPECT_EQ(factory_.SetDifference(a, a), factory_.EmptySet());
  EXPECT_EQ(factory_.SetUnion(a, factory_.EmptySet()), a);
  // Union is commutative and idempotent on interned sets.
  EXPECT_EQ(factory_.SetUnion(a, b), factory_.SetUnion(b, a));
  EXPECT_EQ(factory_.SetUnion(a, a), a);
}

TEST_F(TermTest, SetContainsUsesBinarySearch) {
  std::vector<const Term*> elems;
  for (int i = 0; i < 50; ++i) elems.push_back(factory_.MakeInt(i * 2));
  const Term* s = factory_.MakeSet(elems);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(factory_.SetContains(s, factory_.MakeInt(i * 2)));
    EXPECT_FALSE(factory_.SetContains(s, factory_.MakeInt(i * 2 + 1)));
  }
}

// ------------------------------------------------------------- Groundness --

TEST_F(TermTest, GroundFlags) {
  const Term* x = factory_.MakeVar("X");
  EXPECT_FALSE(x->ground());
  const Term* a = factory_.MakeAtom("a");
  EXPECT_TRUE(a->ground());
  const Term* args[] = {a, x};
  EXPECT_FALSE(factory_.MakeFunc("f", args)->ground());
  const Term* ground_args[] = {a, a};
  EXPECT_TRUE(factory_.MakeFunc("f", ground_args)->ground());
  const Term* set_elems[] = {x};
  EXPECT_FALSE(factory_.MakeSet(set_elems)->ground());
}

TEST_F(TermTest, HasSconsPropagates) {
  const Term* a = factory_.MakeAtom("a");
  const Term* scons_args[] = {a, factory_.EmptySet()};
  const Term* sc = factory_.MakeFunc("scons", scons_args);
  EXPECT_TRUE(sc->has_scons());
  EXPECT_TRUE(sc->ground());  // ground but needs evaluation
  const Term* wrap_args[] = {sc};
  EXPECT_TRUE(factory_.MakeFunc("f", wrap_args)->has_scons());
  EXPECT_FALSE(factory_.MakeFunc("f", scons_args)->has_scons());
}

// ----------------------------------------------------------- Total order --

TEST_F(TermTest, CompareIsTotalAndAntisymmetric) {
  std::vector<const Term*> terms = {
      factory_.MakeInt(-3),
      factory_.MakeInt(7),
      factory_.MakeAtom("apple"),
      factory_.MakeAtom("zebra"),
      factory_.MakeString("apple"),
      factory_.MakeVar("X"),
      factory_.EmptySet(),
  };
  const Term* fa_args[] = {factory_.MakeAtom("a")};
  terms.push_back(factory_.MakeFunc("f", fa_args));
  for (const Term* a : terms) {
    EXPECT_EQ(CompareTerms(factory_, a, a), 0);
    for (const Term* b : terms) {
      int ab = CompareTerms(factory_, a, b);
      int ba = CompareTerms(factory_, b, a);
      if (a == b) {
        EXPECT_EQ(ab, 0);
      } else {
        EXPECT_NE(ab, 0) << "distinct terms must compare unequal";
        EXPECT_EQ(ab, -ba);
      }
    }
  }
}

TEST_F(TermTest, CompareKindRank) {
  // kInt < kAtom < kString < kFunc < kSet < kVar.
  const Term* i = factory_.MakeInt(100);
  const Term* a = factory_.MakeAtom("a");
  const Term* s = factory_.MakeString("a");
  const Term* f_args[] = {i};
  const Term* f = factory_.MakeFunc("f", f_args);
  const Term* set = factory_.EmptySet();
  const Term* v = factory_.MakeVar("X");
  EXPECT_LT(CompareTerms(factory_, i, a), 0);
  EXPECT_LT(CompareTerms(factory_, a, s), 0);
  EXPECT_LT(CompareTerms(factory_, s, f), 0);
  EXPECT_LT(CompareTerms(factory_, f, set), 0);
  EXPECT_LT(CompareTerms(factory_, set, v), 0);
}

TEST_F(TermTest, CompareAtomsByTextNotInsertionOrder) {
  const Term* z = factory_.MakeAtom("zz");
  const Term* a = factory_.MakeAtom("aa");  // interned later, sorts earlier
  EXPECT_LT(CompareTerms(factory_, a, z), 0);
}

// --------------------------------------------------------------- Printing --

TEST_F(TermTest, Printing) {
  const Term* one = factory_.MakeInt(1);
  const Term* a = factory_.MakeAtom("a");
  EXPECT_EQ(factory_.ToString(one), "1");
  EXPECT_EQ(factory_.ToString(factory_.MakeInt(-4)), "-4");
  EXPECT_EQ(factory_.ToString(a), "a");
  EXPECT_EQ(factory_.ToString(factory_.MakeString("hi")), "\"hi\"");
  EXPECT_EQ(factory_.ToString(factory_.MakeVar("X")), "X");
  const Term* args[] = {a, one};
  EXPECT_EQ(factory_.ToString(factory_.MakeFunc("f", args)), "f(a, 1)");
  const Term* elems[] = {one, a};
  EXPECT_EQ(factory_.ToString(factory_.MakeSet(elems)), "{1, a}");
  EXPECT_EQ(factory_.ToString(factory_.EmptySet()), "{}");
}

TEST_F(TermTest, ListPrinting) {
  const Term* one = factory_.MakeInt(1);
  const Term* two = factory_.MakeInt(2);
  const Term* list = factory_.MakeCons(one, factory_.MakeCons(two, factory_.EmptyList()));
  EXPECT_EQ(factory_.ToString(list), "[1, 2]");
  const Term* improper = factory_.MakeCons(one, factory_.MakeVar("T"));
  EXPECT_EQ(factory_.ToString(improper), "[1 | T]");
  EXPECT_EQ(factory_.ToString(factory_.EmptyList()), "[]");
  EXPECT_TRUE(factory_.IsCons(list));
  EXPECT_TRUE(factory_.IsEmptyList(factory_.EmptyList()));
  EXPECT_FALSE(factory_.IsCons(one));
}

// --------------------------------------------------- Universe construction --

TEST_F(TermTest, DeepNestingStaysInterned) {
  // Build {{{...{1}...}}} 100 deep twice; must intern to the same pointer.
  auto build = [&]() {
    const Term* t = factory_.MakeInt(1);
    for (int i = 0; i < 100; ++i) {
      const Term* elems[] = {t};
      t = factory_.MakeSet(elems);
    }
    return t;
  };
  EXPECT_EQ(build(), build());
}

TEST_F(TermTest, MixedFunctionAndSetNesting) {
  // f({a, g(b)}, {}) -- the omega-closure mixes functions and sets (§2.2).
  const Term* a = factory_.MakeAtom("a");
  const Term* b = factory_.MakeAtom("b");
  const Term* g_args[] = {b};
  const Term* g = factory_.MakeFunc("g", g_args);
  const Term* set_elems[] = {a, g};
  const Term* set = factory_.MakeSet(set_elems);
  const Term* f_args[] = {set, factory_.EmptySet()};
  const Term* f = factory_.MakeFunc("f", f_args);
  EXPECT_TRUE(f->ground());
  EXPECT_EQ(factory_.ToString(f), "f({a, g(b)}, {})");
}

}  // namespace
}  // namespace ldl
