// Integration tests reproducing every worked example in the paper
// (experiment ids E1-E15, see DESIGN.md / EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <algorithm>

#include "ldl/ldl.h"
#include "parser/parser.h"

namespace ldl {
namespace {

StatusOr<std::vector<std::string>> EvalFacts(Session& session, const char* pred,
                                             uint32_t arity) {
  LDL_RETURN_IF_ERROR(session.Evaluate());
  PredId id = session.catalog().Find(pred, arity);
  if (id == kInvalidPred) return NotFoundError(pred);
  auto tuples = session.database().relation(id).Snapshot();
  return FormatFacts(session, id, tuples);
}

// E1 (§1): the ancestor "simple program".
TEST(PaperExamples, E1_Ancestor) {
  Session session;
  ASSERT_TRUE(session
                  .Load("parent(adam, bob). parent(bob, carl).\n"
                        "ancestor(X, Y) :- ancestor(X, Z), parent(Z, Y).\n"
                        "ancestor(X, Y) :- parent(X, Y).")
                  .ok());
  auto facts = EvalFacts(session, "ancestor", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"ancestor(adam, bob)",
                                              "ancestor(adam, carl)",
                                              "ancestor(bob, carl)"}));
}

// E2 (§1): excl_ancestor -- an admissible program with two layers.
TEST(PaperExamples, E2_ExclAncestor) {
  Session session;
  ASSERT_TRUE(session
                  .Load("parent(adam, bob). parent(bob, carl).\n"
                        "ancestor(X, Y) :- parent(X, Y).\n"
                        "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n"
                        // The paper's rule binds Z only in the head and under
                        // the negation ("the binding to Z" comes from the
                        // query); bottom-up safety needs an explicit domain.
                        "person(X) :- parent(X, _).\n"
                        "person(X) :- parent(_, X).\n"
                        "excl_ancestor(X, Y, Z) :- ancestor(X, Y), person(Z), "
                        "!ancestor(X, Z).")
                  .ok());
  ASSERT_TRUE(session.Analyze().ok());
  // Two layers (§1: "This program consists of two 'layers'").
  PredId anc = session.catalog().Find("ancestor", 2);
  PredId excl = session.catalog().Find("excl_ancestor", 3);
  EXPECT_EQ(session.stratification().layer_of_pred[excl],
            session.stratification().layer_of_pred[anc] + 1);
  // excl_ancestor(X, Y, Z): X ancestor of Y but not of Z. adam's ancestors
  // are bob, carl; nobody is an ancestor of adam.
  auto result = session.Query("excl_ancestor(adam, bob, adam)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 1u);
  auto empty = session.Query("excl_ancestor(adam, bob, carl)");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->tuples.empty());
}

// E3 (§1): the even/int program cannot be stratified.
TEST(PaperExamples, E3_EvenIntIsInadmissible) {
  Session session;
  ASSERT_TRUE(session
                  .Load("int(0).\n"
                        "int(s(X)) :- int(X).\n"
                        "even(0).\n"
                        "even(s(X)) :- int(X), !even(X).")
                  .ok());
  Status status = session.Analyze();
  EXPECT_EQ(status.code(), StatusCode::kNotAdmissible);
  EXPECT_NE(status.message().find("even"), std::string::npos) << status;
}

// E4 (§1): book_deal -- set enumeration with duplicate elimination. The
// cardinality of the derived sets is bounded by 3, and books with the same
// title collapse, so singleton and doublet sets appear.
TEST(PaperExamples, E4_BookDeal) {
  Session session;
  ASSERT_TRUE(session
                  .Load("book(tapl, 60). book(sicp, 30). book(art, 90).\n"
                        "book_deal({X, Y, Z}) :- book(X, Px), book(Y, Py), "
                        "book(Z, Pz), Px + Py + Pz < 100.")
                  .ok());
  auto facts = EvalFacts(session, "book_deal", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  // Triples under 100: (sicp,sicp,sicp)=90 -> {sicp};
  // (tapl,sicp,sicp)&perms=120 no; (tapl,tapl,tapl)=180 no...
  // Only sicp alone qualifies at 30*3=90: the singleton {sicp}.
  EXPECT_EQ(*facts, (std::vector<std::string>{"book_deal({sicp})"}));

  // With cheaper books, doublets appear.
  Session session2;
  ASSERT_TRUE(session2
                  .Load("book(a, 20). book(b, 30). book(c, 90).\n"
                        "book_deal({X, Y, Z}) :- book(X, Px), book(Y, Py), "
                        "book(Z, Pz), Px + Py + Pz < 100.")
                  .ok());
  auto facts2 = EvalFacts(session2, "book_deal", 1);
  ASSERT_TRUE(facts2.ok()) << facts2.status();
  EXPECT_EQ(*facts2, (std::vector<std::string>{
                         "book_deal({a, b})",   // 20+20+30, 20+30+30
                         "book_deal({a})",      // 60
                         "book_deal({b})"}));   // 90
}

// E5 (§1): grouping the immediate subparts per part -- the paper's instance.
TEST(PaperExamples, E5_PartGrouping) {
  Session session;
  ASSERT_TRUE(session
                  .Load("p(1, 2). p(1, 7). p(2, 3). p(2, 4). p(3, 5). p(3, 6).\n"
                        "part(P, <S>) :- p(P, S).")
                  .ok());
  auto facts = EvalFacts(session, "part", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{
                        "part(1, {2, 7})", "part(2, {3, 4})", "part(3, {5, 6})"}));
}

// E6 (§1): the bill-of-materials program with the paper's exact base
// relations and expected tc tuples.
TEST(PaperExamples, E6_BillOfMaterials) {
  Session session;
  ASSERT_TRUE(session
                  .Load(
                      // Base relations from the paper.
                      "p(1, 2). p(1, 7). p(2, 3). p(2, 4). p(3, 5). p(3, 6).\n"
                      "q(4, 20). q(5, 10). q(6, 15). q(7, 200).\n"
                      // The program (§1), with partition realized via the
                      // built-in as the paper suggests.
                      "part(P, <S>) :- p(P, S).\n"
                      "tc({X}, C) :- q(X, C).\n"
                      "tc({X}, C) :- part(X, S), tc(S, C).\n"
                      "tc(S, C) :- partition(S, S1, S2), tc(S1, C1), "
                      "tc(S2, C2), +(C1, C2, C).\n"
                      "result(X, C) :- tc({X}, C).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  // The paper: tc({3}, 25), tc({2}, 45), tc({1}, 245).
  for (const char* goal : {"tc({3}, 25)", "tc({2}, 45)", "tc({1}, 245)"}) {
    auto result = session.Query(goal);
    ASSERT_TRUE(result.ok()) << goal << ": " << result.status();
    EXPECT_EQ(result->tuples.size(), 1u) << goal;
  }
  // result contains the cost of every part, elementary or aggregate.
  auto result = session.Query("result(1, C)");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tuples.size(), 1u);
  EXPECT_EQ(result->tuples[0][1]->int_value(), 245);
  auto leaf = session.Query("result(7, 200)");
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(leaf->tuples.size(), 1u);
}

// E6 footnote 2: "if base relation q would be 'impure' in the sense that it
// would also contain cost tuples for some of the aggregate parts, the
// derivation would still hold."
TEST(PaperExamples, E6_ImpureBaseCosts) {
  Session session;
  ASSERT_TRUE(session
                  .Load("p(1, 2). p(1, 7). p(2, 3). p(2, 4). p(3, 5). p(3, 6).\n"
                        "q(4, 20). q(5, 10). q(6, 15). q(7, 200).\n"
                        "q(2, 45).\n"  // impure: aggregate part 2's cost
                        "part(P, <S>) :- p(P, S).\n"
                        "tc({X}, C) :- q(X, C).\n"
                        "tc({X}, C) :- part(X, S), tc(S, C).\n"
                        "tc(S, C) :- partition(S, S1, S2), tc(S1, C1), "
                        "tc(S2, C2), +(C1, C2, C).\n"
                        "result(X, C) :- tc({X}, C).")
                  .ok());
  for (const char* goal : {"result(2, 45)", "result(1, 245)", "result(3, 25)"}) {
    auto result = session.Query(goal);
    ASSERT_TRUE(result.ok()) << goal << ": " << result.status();
    EXPECT_EQ(result->tuples.size(), 1u) << goal;
  }
  // And part 2 has exactly one cost (both routes agree).
  auto costs = session.Query("result(2, C)");
  ASSERT_TRUE(costs.ok());
  EXPECT_EQ(costs->tuples.size(), 1u);
}

// E7 (§2.2): the model-checking example.
TEST(PaperExamples, E7_ModelExample) {
  Session session;
  ASSERT_TRUE(session
                  .Load("q(X) :- p(X), h(X).\n"
                        "p(<X>) :- r(X).\n"
                        "r(1).\n"
                        "h({1}).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  // The computed model is {r(1), h({1}), p({1}), q({1})}.
  for (const char* goal : {"r(1)", "h({1})", "p({1})", "q({1})"}) {
    auto result = session.Query(goal);
    ASSERT_TRUE(result.ok()) << goal;
    EXPECT_EQ(result->tuples.size(), 1u) << goal;
  }
  // And p({1, 2}) is not in it (the paper's non-model).
  auto bad = session.Query("p({1, 2})");
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(bad->tuples.empty());
}

// E8 (§2.3): p(<X>) <- q(X) computes exactly one grouped fact per database;
// the standard model over {q(1), q(2)} contains p({1, 2}) and not p({1}) or
// p({2}) -- the intersection of the two §2.3 models is not a model, which is
// why minimality needs the §2.4 domination order.
TEST(PaperExamples, E8_GroupingModels) {
  Session session;
  ASSERT_TRUE(session.Load("q(1). q(2).\np(<X>) :- q(X).").ok());
  auto facts = EvalFacts(session, "p", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"p({1, 2})"}));
}

// E9 (§2.3): p(<X>) <- p(X) with p(1) has no model (Russell-Whitehead);
// the syntactic layering restriction rejects it.
TEST(PaperExamples, E9_NoModelProgramRejected) {
  Session session;
  ASSERT_TRUE(session.Load("p(1).\np(<X>) :- p(X).").ok());
  EXPECT_EQ(session.Analyze().code(), StatusCode::kNotAdmissible);
}

// E10 (§2.3/§2.4): the program without a unique minimal model is likewise
// outside the admissible class (q and p are mutually dependent through
// grouping).
TEST(PaperExamples, E10_NonUniqueMinimalModelProgramRejected) {
  Session session;
  ASSERT_TRUE(session
                  .Load("p(<X>) :- q(X).\n"
                        "q(Y) :- w(S, Y), p(S).\n"
                        "q(1).\n"
                        "w({1}, 7).")
                  .ok());
  EXPECT_EQ(session.Analyze().code(), StatusCode::kNotAdmissible);

  // The §2.4 variant with the cycle through p({1,2}) is rejected too.
  Session session2;
  ASSERT_TRUE(session2
                  .Load("q(1).\n"
                        "p(<X>) :- q(X).\n"
                        "q(2) :- p({1, 2}).")
                  .ok());
  EXPECT_EQ(session2.Analyze().code(), StatusCode::kNotAdmissible);
}

// E11 (§3.3): negation eliminated through grouping agrees with stratified
// negation (full test suite in neg_grouping_test.cc; here the paper's
// two-layer example).
TEST(PaperExamples, E11_NegationAsGrouping) {
  // Covered in depth by neg_grouping_test.cc; assert the headline property
  // on the excl_ancestor program.
  Session session;
  ASSERT_TRUE(session
                  .Load("parent(a, b). parent(b, c).\n"
                        "anc(X, Y) :- parent(X, Y).\n"
                        "anc(X, Y) :- parent(X, Z), anc(Z, Y).\n"
                        "person(X) :- parent(X, _).\n"
                        "person(X) :- parent(_, X).\n"
                        "excl(X, Y, Z) :- anc(X, Y), person(Z), !anc(X, Z).")
                  .ok());
  auto result = session.Query("excl(a, b, a)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 1u);
}

// E12 (§4.1): body set patterns with uniform structure (see ldl15_test.cc
// for the full matrix; here the paper's own p(<<X>>) example).
TEST(PaperExamples, E12_BodyPatterns) {
  Session session2;
  ASSERT_TRUE(session2
                  .Load("p({{1, 2}, {3}, {4, 5}}).\n"
                        "p({{1, 2}, 3, {4, 5}}).\n"
                        "inner(X) :- p(<<X>>).")
                  .ok());
  auto facts = EvalFacts(session2, "inner", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"inner(1)", "inner(2)", "inner(3)",
                                              "inner(4)", "inner(5)"}));
}

// E13 (§4.2): the teacher/student/class/day head-term examples are covered
// exhaustively in ldl15_test.cc (all three groupings plus (ii)').

// E14 (§5): LPS disj/subset are covered in lps_test.cc.

// E15 (§6): the young running example with magic sets is covered in
// magic_test.cc; here we pin the grouping-under-negation rule itself.
TEST(PaperExamples, E15_YoungSemantics) {
  Session session;
  ASSERT_TRUE(session
                  .Load("p(adam, bob). p(bob, carl).\n"
                        "siblings(adam, eve). siblings(eve, adam).\n"
                        "p(eve, ella).\n"
                        "a(X, Y) :- p(X, Y).\n"
                        "a(X, Y) :- a(X, Z), a(Z, Y).\n"
                        "sg(X, Y) :- siblings(X, Y).\n"
                        "sg(X, Y) :- p(Z1, X), sg(Z1, Z2), p(Z2, Y).\n"
                        "young(X, <Y>) :- !a(X, Z), sg(X, Y).")
                  .ok());
  auto facts = EvalFacts(session, "young", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  // bob and ella are the same generation; carl's generation is empty (ella
  // has no children), so young(carl, *) is absent even though carl is
  // childless -- exactly the §6 footnote: the query fails when S is empty.
  EXPECT_EQ(*facts, (std::vector<std::string>{"young(ella, {bob})"}));
}

// §5 Proposition: LDL1 has models LPS cannot express -- nested grouping
// builds {{1}} from {1}, which leaves LPS's D u P(D) domain. We verify the
// unique minimal model the paper states.
TEST(PaperExamples, Section5PropositionNestedGrouping) {
  Session session;
  ASSERT_TRUE(session
                  .Load("q(1).\n"
                        "p(<X>) :- q(X).\n"
                        "w(<X>) :- p(X).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  for (const char* goal : {"q(1)", "p({1})", "w({{1}})"}) {
    auto result = session.Query(goal);
    ASSERT_TRUE(result.ok()) << goal;
    EXPECT_EQ(result->tuples.size(), 1u) << goal;
  }
  EXPECT_EQ(session.database().TotalFacts(), 3u);
}

// Theorem 2: the standard model is independent of the layering chosen.
TEST(PaperExamples, Theorem2_LayeringIndependence) {
  const char* source =
      "base(1). base(2). base(3). e(1, 2). e(2, 3).\n"
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), e(Z, Y).\n"
      "sink(X) :- base(X), !src(X).\n"
      "src(X) :- e(X, _).\n"
      "groupit(<X>) :- sink(X).";
  auto run = [&](bool fine) {
    Session session;
    EXPECT_TRUE(session.Load(source).ok());
    EXPECT_TRUE(session.Analyze().ok());
    Stratification strat = session.stratification();
    if (fine) {
      auto fine_strat = StratifyFine(session.catalog(), session.program());
      EXPECT_TRUE(fine_strat.ok());
      strat = *fine_strat;
      EXPECT_GT(strat.strata.size(), session.stratification().strata.size());
    }
    Database db(&session.catalog());
    EXPECT_TRUE(session.EvaluateInto(strat, &db).ok());
    std::vector<std::string> all;
    for (const char* pred : {"tc", "sink", "src", "groupit"}) {
      uint32_t arity = std::string(pred) == "tc" ? 2 : 1;
      PredId id = session.catalog().Find(pred, arity);
      auto tuples = db.relation(id).Snapshot();
      for (auto& f : FormatFacts(session, id, tuples)) all.push_back(f);
    }
    std::sort(all.begin(), all.end());
    return all;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace ldl
