// ldl_repl -- an interactive LDL1 shell.
//
//   $ ldl_repl [file.ldl ...]
//
// Lines ending in '.' are fed to the session as program text (facts, rules,
// or "? goal." queries). Meta-commands:
//
//   :help                this text
//   :quit                exit
//   :strata              show the layering of the analyzed program
//   :preds               list predicates with arities and fact counts
//   :facts p/2           print the facts of a predicate
//   :plan p/2            cost-based join orders for the predicate's rules
//   :program             print the expanded (LDL1) program
//   :warnings            §7 finiteness warnings
//   :strategy [name]     query strategy: model, magic, magic-sup, topdown
//   :magic on|off|sup    shorthand for :strategy magic / model / magic-sup
//   :naive on|off        switch the fixpoint engine (default: semi-naive)
//   :batch on|off        block-at-a-time execution (default: on)
//   :threads N           worker threads for bottom-up evaluation
//   :stats               stats of the last evaluation + per-predicate
//                        dead-row (tombstone) ratios
//   :serve [N] goal      answer goal from N concurrent ldl::Service readers
//   :profile [on|off]    collect per-rule/per-stratum profiles on queries
//   :profile dump [file] last collected profile as JSON (stdout or file)
//
// Errors go to stderr. In batch mode (stdin is not a tty) the process exits
// nonzero if any statement or command failed, so scripts can rely on the
// exit status.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/str_util.h"
#include "eval/cost.h"
#include "eval/profile.h"
#include "ldl/ldl.h"
#include "ldl/service.h"

namespace {

struct ReplState {
  ldl::Session session;
  ldl::QueryStrategy strategy = ldl::QueryStrategy::kModel;
  bool naive = false;
  bool batch = true;
  int threads = 1;
  bool profile = false;
  // Profile of the most recent profiled query (what :profile dump shows).
  ldl::EvalProfile last_profile;
  // The goal most recently prepared, reused while consecutive queries
  // repeat the same text (skips the per-call reparse).
  std::string last_goal_text;
  ldl::PreparedQuery last_prepared;
  // Everything fed to the session as program text, replayed by :serve to
  // stand up an ldl::Service over the same program.
  std::string program_text;
  bool any_failed = false;
};

// All user-visible errors funnel through here: stderr, not stdout, and the
// failure is remembered for the batch-mode exit status.
void Fail(ReplState& state, const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  state.any_failed = true;
}

void PrintHelp() {
  std::printf(
      "enter LDL1 clauses terminated by '.', e.g.\n"
      "    parent(a, b).\n"
      "    anc(X, Y) :- parent(X, Y).\n"
      "    anc(X, Y) :- parent(X, Z), anc(Z, Y).\n"
      "    ? anc(a, X).\n"
      "meta: :help :quit :strata :preds :facts p/2 :plan p/2 :program\n"
      "      :warnings :why f(a)\n"
      "      :retract f(a).\n"
      "      :strategy [%s]  :magic on|off|sup\n"
      "      :naive on|off  :batch on|off  :threads N  :stats\n"
      "      :serve [N] goal\n"
      "      :profile [on|off]  :profile dump [file]\n",
      ldl::QueryStrategyNames());
}

void RunQuery(ReplState& state, const std::string& goal) {
  ldl::QueryOptions options;
  options.strategy = state.strategy;
  options.eval.mode = state.naive ? ldl::EvalOptions::Mode::kNaive
                                  : ldl::EvalOptions::Mode::kSemiNaive;
  options.eval.num_threads = state.threads;
  options.eval.profile = state.profile;
  options.eval.batch = state.batch;
  // Repeated queries of the same text reuse the prepared goal instead of
  // reparsing it.
  if (goal != state.last_goal_text || !state.last_prepared.valid()) {
    auto prepared = state.session.Prepare(goal);
    if (!prepared.ok()) {
      Fail(state, prepared.status().ToString());
      return;
    }
    state.last_prepared = *std::move(prepared);
    state.last_goal_text = goal;
  }
  auto result = state.session.Query(state.last_prepared, options);
  if (!result.ok()) {
    Fail(state, result.status().ToString());
    return;
  }
  if (state.profile) state.last_profile = result->profile;
  for (const ldl::Tuple& tuple : result->tuples) {
    std::printf("  %s\n", state.session.FormatTuple(tuple).c_str());
  }
  std::string suffix;
  if (state.strategy != ldl::QueryStrategy::kModel) {
    suffix = std::string(" [") + ldl::ToString(state.strategy) + "]";
  }
  std::printf("%zu answer(s)%s\n", result->tuples.size(), suffix.c_str());
}

void ShowStrata(ReplState& state) {
  ldl::Status status = state.session.Analyze();
  if (!status.ok()) {
    Fail(state, status.ToString());
    return;
  }
  const ldl::Stratification& strat = state.session.stratification();
  ldl::Catalog& catalog = state.session.catalog();
  for (int layer = 0; layer < strat.layer_count(); ++layer) {
    std::string preds;
    for (ldl::PredId p = 0; p < catalog.size(); ++p) {
      if (strat.layer_of_pred[p] == layer) {
        if (!preds.empty()) preds += ", ";
        preds += catalog.DebugName(p);
      }
    }
    std::printf("  layer %d: %s (%zu rule(s))\n", layer, preds.c_str(),
                strat.strata[layer].size());
  }
}

void ShowPreds(ReplState& state) {
  ldl::Status status = state.session.Evaluate();
  if (!status.ok()) {
    Fail(state, status.ToString());
    return;
  }
  ldl::Catalog& catalog = state.session.catalog();
  for (ldl::PredId p = 0; p < catalog.size(); ++p) {
    size_t count = state.session.database().relation(p).size();
    if (count == 0 && !catalog.info(p).has_rules) continue;
    std::printf("  %-24s %6zu fact(s)%s\n", catalog.DebugName(p).c_str(), count,
                catalog.info(p).has_rules ? "  [derived]" : "");
  }
}

void ShowFacts(ReplState& state, const std::string& spec) {
  auto slash = spec.rfind('/');
  if (slash == std::string::npos) {
    Fail(state, "usage: :facts name/arity");
    return;
  }
  std::string name = spec.substr(0, slash);
  uint32_t arity = static_cast<uint32_t>(atoi(spec.c_str() + slash + 1));
  ldl::Status status = state.session.Evaluate();
  if (!status.ok()) {
    Fail(state, status.ToString());
    return;
  }
  ldl::PredId pred = state.session.catalog().Find(name, arity);
  if (pred == ldl::kInvalidPred) {
    Fail(state, ldl::StrCat("unknown predicate ", spec));
    return;
  }
  auto tuples = state.session.database().relation(pred).Snapshot();
  for (const std::string& line : FormatFacts(state.session, pred, tuples)) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("%zu fact(s)\n", tuples.size());
}

void ShowWarnings(ReplState& state) {
  auto warnings = state.session.TerminationWarnings();
  if (!warnings.ok()) {
    Fail(state, warnings.status().ToString());
    return;
  }
  if (warnings->empty()) {
    std::printf("no finiteness warnings\n");
    return;
  }
  for (const ldl::TerminationWarning& warning : *warnings) {
    std::printf("  warning: %s\n", warning.message.c_str());
  }
}

void ShowProgram(ReplState& state) {
  ldl::Status status = state.session.Analyze();
  if (!status.ok()) {
    Fail(state, status.ToString());
    return;
  }
  ldl::AstPrinter printer(&state.session.interner());
  std::printf("%s", printer.ToString(state.session.expanded_ast()).c_str());
}

// :serve [N] goal -- stands up an ldl::Service over the program entered so
// far and answers `goal` from N concurrent reader threads, then prints the
// service's serving counters. A smoke-scale demo of the concurrent serving
// facade (bench/bench_service.cc measures it properly).
void RunServe(ReplState& state, int threads, const std::string& goal) {
  ldl::Service service;
  ldl::Status status = service.Load(state.program_text);
  if (!status.ok()) {
    Fail(state, status.ToString());
    return;
  }
  auto prepared = service.Prepare(goal);
  if (!prepared.ok()) {
    Fail(state, prepared.status().ToString());
    return;
  }
  auto sample = service.Query(*prepared);
  if (!sample.ok()) {
    Fail(state, sample.status().ToString());
    return;
  }
  constexpr int kQueriesPerThread = 25;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto result = service.Query(*prepared);
        if (!result.ok() || result->tuples.size() != sample->tuples.size()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  if (failures.load() != 0) {
    Fail(state, ldl::StrCat(failures.load(), " of the concurrent queries "
                                             "failed or disagreed"));
    return;
  }
  std::printf("served %d queries over %d thread(s), %zu answer(s) each\n",
              threads * kQueriesPerThread + 1, threads, sample->tuples.size());
  std::printf("  %s\n", ldl::FormatServiceStats(service.stats()).c_str());
}

// :plan p/2 -- for every rule whose head is the predicate, print the join
// order the cost-based planner picks against the current database, one line
// per evaluation step with the estimated intermediate cardinality after it.
void ShowPlan(ReplState& state, const std::string& spec) {
  auto slash = spec.rfind('/');
  if (slash == std::string::npos) {
    Fail(state, "usage: :plan name/arity");
    return;
  }
  std::string name = spec.substr(0, slash);
  uint32_t arity = static_cast<uint32_t>(atoi(spec.c_str() + slash + 1));
  // Plan against the materialized model so IDB statistics are populated.
  ldl::Status status = state.session.Evaluate();
  if (!status.ok()) {
    Fail(state, status.ToString());
    return;
  }
  ldl::PredId pred = state.session.catalog().Find(name, arity);
  if (pred == ldl::kInvalidPred) {
    Fail(state, ldl::StrCat("unknown predicate ", spec));
    return;
  }
  const ldl::Catalog& catalog = state.session.catalog();
  const ldl::TermFactory& factory = state.session.factory();
  ldl::CostModel model =
      ldl::CostModel::Snapshot(state.session.database(), catalog);
  size_t shown = 0;
  for (const ldl::RuleIr& rule : state.session.program().rules) {
    if (rule.head_pred != pred || rule.is_fact()) continue;
    auto order = ldl::OrderBodyLiteralsCostBased(catalog, rule, model);
    if (!order.ok()) {
      Fail(state, order.status().ToString());
      return;
    }
    ldl::OrderCost cost = ldl::EstimateOrderCost(rule, *order, model);
    std::printf("rule: %s\n",
                ldl::FormatRuleLabel(factory, catalog, rule).c_str());
    for (size_t step = 0; step < order->size(); ++step) {
      const ldl::LiteralIr& literal = rule.body[(*order)[step]];
      std::string rendered = ldl::FormatLiteral(factory, catalog, literal);
      std::string rows;
      if (!literal.is_builtin() && !literal.negated) {
        rows = ldl::StrCat("  [", static_cast<size_t>(
                                      model.Card(literal.pred).rows),
                           " rows]");
      }
      std::printf("  %zu. %-32s%s  ~%.1f out\n", step + 1, rendered.c_str(),
                  rows.c_str(), cost.step_rows[step]);
    }
    std::printf("  est total work %.1f, est solutions %.1f\n", cost.total_work,
                cost.out_rows);
    ++shown;
  }
  if (shown == 0) std::printf("no rules for %s\n", spec.c_str());
}

void ShowStats(ReplState& state) {
  // Generated from the EvalStats X-macro: every counter prints, including
  // ones added later.
  const ldl::EvalStats& stats = state.session.last_eval_stats();
  int on_line = 0;
  stats.ForEachField([&](const char* name, size_t value) {
    std::printf("%s%s=%zu", on_line == 0 ? "  " : " ", name, value);
    if (++on_line == 5) {
      std::printf("\n");
      on_line = 0;
    }
  });
  if (on_line != 0) std::printf("\n");
  // Tombstone bloat per predicate: retracted rows stay in storage as dead
  // rows until the next rebuild, so scans pay for raw_rows while the cost
  // model prices joins with the live count only.
  ldl::Catalog& catalog = state.session.catalog();
  bool header = false;
  for (ldl::PredId p = 0; p < catalog.size(); ++p) {
    ldl::RelationStats rel = state.session.database().relation(p).Stats();
    if (rel.raw_rows == rel.rows) continue;
    if (!header) {
      std::printf("  dead rows (tombstones):\n");
      header = true;
    }
    size_t dead = rel.raw_rows - rel.rows;
    std::printf("    %-24s %zu live / %zu stored (%.0f%% dead)\n",
                catalog.DebugName(p).c_str(), rel.rows, rel.raw_rows,
                100.0 * static_cast<double>(dead) /
                    static_cast<double>(rel.raw_rows));
  }
}

// Returns false on :quit.
bool HandleLine(ReplState& state, const std::string& raw) {
  std::string line(ldl::StripWhitespace(raw));
  if (line.empty()) return true;
  if (line[0] == ':') {
    std::istringstream in(line.substr(1));
    std::string command;
    std::string argument;
    in >> command >> argument;
    if (command == "quit" || command == "q" || command == "exit") return false;
    if (command == "help") {
      PrintHelp();
    } else if (command == "strata") {
      ShowStrata(state);
    } else if (command == "preds") {
      ShowPreds(state);
    } else if (command == "facts") {
      ShowFacts(state, argument);
    } else if (command == "plan") {
      ShowPlan(state, argument);
    } else if (command == "program") {
      ShowProgram(state);
    } else if (command == "warnings") {
      ShowWarnings(state);
    } else if (command == "retract") {
      // :retract e(a, b). -- everything after the command is the fact
      // batch; removal is all-or-nothing and maintained incrementally.
      std::string rest(ldl::StripWhitespace(line.substr(1 + command.size())));
      if (rest.empty()) {
        Fail(state, "usage: :retract fact. [fact. ...]");
      } else {
        ldl::Status status = state.session.RemoveFacts(rest);
        if (!status.ok()) {
          Fail(state, status.ToString());
        } else {
          std::printf("retracted\n");
        }
      }
    } else if (command == "why") {
      // :why anc(a, c) -- everything after the command is the fact.
      std::string rest(ldl::StripWhitespace(line.substr(1 + command.size())));
      if (!rest.empty() && rest.back() == '.') rest.pop_back();
      auto tree = state.session.Explain(rest);
      if (tree.ok()) {
        std::printf("%s", tree->c_str());
      } else {
        Fail(state, tree.status().ToString());
      }
    } else if (command == "stats") {
      ShowStats(state);
    } else if (command == "profile") {
      if (argument.empty() || argument == "on" || argument == "off") {
        if (!argument.empty()) state.profile = argument == "on";
        std::printf("profile: %s\n", state.profile ? "on" : "off");
      } else if (argument == "dump") {
        std::string path;
        in >> path;
        std::string json = state.last_profile.ToJson();
        if (path.empty()) {
          std::printf("%s\n", json.c_str());
        } else {
          std::ofstream out(path);
          if (!out) {
            Fail(state, ldl::StrCat("cannot write ", path));
          } else {
            out << json << '\n';
            std::printf("profile written to %s\n", path.c_str());
          }
        }
      } else {
        Fail(state, "usage: :profile [on|off] or :profile dump [file]");
      }
    } else if (command == "strategy") {
      if (argument.empty()) {
        std::printf("strategy: %s (valid: %s)\n", ldl::ToString(state.strategy),
                    ldl::QueryStrategyNames());
      } else {
        auto strategy = ldl::ParseQueryStrategy(argument);
        if (!strategy.ok()) {
          Fail(state, strategy.status().ToString());
        } else {
          state.strategy = *strategy;
          std::printf("strategy: %s\n", ldl::ToString(state.strategy));
        }
      }
    } else if (command == "serve") {
      // :serve [N] goal -- the thread count is optional.
      int threads = 2;
      std::string goal = argument;
      if (!goal.empty() && goal.find_first_not_of("0123456789") ==
                               std::string::npos) {
        threads = atoi(goal.c_str());
        goal.clear();
      }
      std::string rest;
      std::getline(in, rest);
      goal += rest;
      goal = std::string(ldl::StripWhitespace(goal));
      if (!goal.empty() && goal.back() == '.') goal.pop_back();
      if (goal.empty() || threads < 1) {
        Fail(state, "usage: :serve [N] goal");
      } else {
        RunServe(state, threads, goal);
      }
    } else if (command == "magic") {
      // Back-compat shorthand for :strategy.
      state.strategy = argument == "off" ? ldl::QueryStrategy::kModel
                       : argument == "sup"
                           ? ldl::QueryStrategy::kMagicSupplementary
                           : ldl::QueryStrategy::kMagic;
      bool magic = state.strategy != ldl::QueryStrategy::kModel;
      std::printf("magic %s%s\n", magic ? "on" : "off",
                  state.strategy == ldl::QueryStrategy::kMagicSupplementary
                      ? " (supplementary)"
                      : "");
    } else if (command == "threads") {
      int threads = atoi(argument.c_str());
      if (threads < 1) {
        Fail(state, "usage: :threads N (N >= 1)");
      } else {
        state.threads = threads;
        std::printf("threads: %d\n", state.threads);
      }
    } else if (command == "naive") {
      state.naive = argument != "off";
      std::printf("engine: %s\n", state.naive ? "naive" : "semi-naive");
    } else if (command == "batch") {
      state.batch = argument != "off";
      std::printf("execution: %s\n",
                  state.batch ? "block-at-a-time" : "tuple-at-a-time");
    } else {
      Fail(state, ldl::StrCat("unknown command :", command, " (try :help)"));
    }
    return true;
  }

  // Program text. "? goal." lines become queries.
  if (line[0] == '?') {
    size_t start = line.find_first_not_of("?- \t");
    std::string goal = line.substr(start);
    if (!goal.empty() && goal.back() == '.') goal.pop_back();
    RunQuery(state, goal);
    return true;
  }
  // AddFacts keeps the materialized model alive when the line is pure EDB
  // facts (the next query maintains it incrementally); anything else falls
  // back to Load() semantics inside.
  ldl::Status status = state.session.AddFacts(line);
  if (!status.ok()) {
    Fail(state, status.ToString());
  } else {
    state.program_text += line;
    state.program_text += '\n';
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ReplState state;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    ldl::Status status = state.session.Load(buffer.str());
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i], status.ToString().c_str());
      return 1;
    }
    state.program_text += buffer.str();
    state.program_text += '\n';
    std::printf("loaded %s\n", argv[i]);
  }

  bool interactive = isatty(0);
  if (interactive) {
    std::printf("ldl1 shell -- :help for commands, :quit to exit\n");
  }
  std::string pending;
  std::string line;
  while (true) {
    if (interactive) std::printf(pending.empty() ? "ldl> " : "...> ");
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(ldl::StripWhitespace(line));
    if (trimmed.empty()) continue;
    // Meta-commands and queries are single-line; clauses accumulate until a
    // terminating '.'.
    if (pending.empty() && (trimmed[0] == ':' || trimmed[0] == '?')) {
      if (!HandleLine(state, trimmed)) break;
      continue;
    }
    pending += trimmed;
    pending += ' ';
    if (trimmed.back() == '.') {
      if (!HandleLine(state, pending)) break;
      pending.clear();
    }
  }
  // Batch runs (scripts piped on stdin) report failure through the exit
  // status; interactively the errors were already seen on stderr.
  return !interactive && state.any_failed ? 1 : 0;
}
