#!/usr/bin/env bash
# Pre-PR gate: runs the tier-1 suite (configure + build + full ctest) and
# then the bench-smoke tier (every benchmark binary for one timing batch,
# catching crashes/asserts without recording timings).
#
# Usage: tools/check_tiers.sh [build_dir]
#   build_dir  defaults to ./build; configured on demand.
#
# Exits nonzero on the first failing tier. Run this before every PR; it is
# the same sequence CI would run (ROADMAP.md "Tier-1 verify").
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

echo "== tier 1: configure + build"
cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j

echo "== tier 1: ctest (full suite)"
ctest --test-dir "${build_dir}" --output-on-failure -j

echo "== bench-smoke: one timing batch per benchmark binary"
ctest --test-dir "${build_dir}" --output-on-failure -L bench-smoke

echo "== all tiers green"
